// Dynamic fixed-width bitset used for taxon sets.
//
// Taxon sets are dense (indices 0..n-1 with n up to a few thousand), so a
// word-packed bitset beats std::set / unordered_set by a wide margin for the
// intersection-heavy operations Gentrius performs at every state.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/check.hpp"

namespace gentrius::support {

class Bitset {
 public:
  Bitset() = default;

  /// Constructs an all-zero set over the universe [0, universe_size).
  explicit Bitset(std::size_t universe_size)
      : size_(universe_size), words_((universe_size + 63) / 64, 0) {}

  std::size_t universe_size() const noexcept { return size_; }

  void resize(std::size_t universe_size) {
    size_ = universe_size;
    words_.assign((universe_size + 63) / 64, 0);
  }

  bool test(std::size_t i) const noexcept {
    GENTRIUS_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1U;
  }

  void set(std::size_t i) noexcept {
    GENTRIUS_DCHECK(i < size_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void reset(std::size_t i) noexcept {
    GENTRIUS_DCHECK(i < size_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void clear() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Number of set bits.
  std::size_t count() const noexcept {
    std::size_t c = 0;
    for (auto w : words_) c += static_cast<std::size_t>(std::popcount(w));
    return c;
  }

  bool empty() const noexcept {
    for (auto w : words_)
      if (w != 0) return false;
    return true;
  }

  /// |*this ∩ other|. Universes must match.
  std::size_t intersection_count(const Bitset& other) const noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    std::size_t c = 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
      c += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
    return c;
  }

  Bitset& operator|=(const Bitset& other) noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  Bitset& operator&=(const Bitset& other) noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  /// Removes from *this every element of other.
  Bitset& subtract(const Bitset& other) noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
    return *this;
  }

  bool operator==(const Bitset& other) const noexcept = default;

  /// True iff every element of *this is in other.
  bool is_subset_of(const Bitset& other) const noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & ~other.words_[i]) != 0) return false;
    return true;
  }

  /// True iff the sets share at least one element.
  bool intersects(const Bitset& other) const noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & other.words_[i]) != 0) return true;
    return false;
  }

  /// Lowest index set in both this and other, or universe_size() when the
  /// intersection is empty.
  std::size_t first_common(const Bitset& other) const noexcept {
    GENTRIUS_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t w = words_[i] & other.words_[i];
      if (w != 0)
        return (i << 6) + static_cast<std::size_t>(std::countr_zero(w));
    }
    return size_;
  }

  /// Index of the lowest set bit, or universe_size() when empty.
  std::size_t first() const noexcept {
    for (std::size_t i = 0; i < words_.size(); ++i)
      if (words_[i] != 0)
        return (i << 6) + static_cast<std::size_t>(std::countr_zero(words_[i]));
    return size_;
  }

  /// Invokes fn(index) for every set bit in ascending order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i];
      while (w != 0) {
        const auto b = static_cast<std::size_t>(std::countr_zero(w));
        fn((i << 6) + b);
        w &= w - 1;
      }
    }
  }

  /// Materializes the set as a sorted index vector.
  std::vector<std::uint32_t> to_indices() const {
    std::vector<std::uint32_t> out;
    out.reserve(count());
    for_each([&](std::size_t i) { out.push_back(static_cast<std::uint32_t>(i)); });
    return out;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace gentrius::support
