// Monotonic arena allocator for per-worker scratch state.
//
// A Terrace owns ~30 separately-malloc'd arrays (mapping-sweep scratch,
// slot-interning tables, journal ring, per-constraint storage). All of them
// share one lifetime — the Terrace's — and all are hot: the mapping-rebuild
// sweep streams cnt_/xorv_/ctx_ in lockstep, the admissibility probes walk
// edge_slot_/target_slot_ pairs. Backing them with one bump-pointer arena
// buys two things:
//  * construction/teardown of a worker's Terrace is a handful of block
//    allocations instead of dozens of mallocs (workers build one Terrace per
//    adopted task replay in the bench harness);
//  * arrays allocated together in one rebuild batch are contiguous, so the
//    sweeps touch one warm region instead of malloc-scattered lines.
// Steady-state enumeration performs no allocation at all: every container
// reaches its high-water capacity during the first states and the arena
// serves later growth from already-reserved blocks.
//
// Design: a chunked monotonic buffer (64 KiB blocks, oversized requests get
// a dedicated block) with a std-compatible ArenaAllocator<T> handle.
// Deallocation is a no-op — freed space is reclaimed only when the arena
// dies. That is the right trade for Terrace scratch, whose containers only
// ever grow toward a bounded high-water mark; it would be the wrong trade
// for unbounded churn. The arena is handed out through std::shared_ptr so
// container copies (Terrace is copyable: the bench harness clones scout
// instances) keep their backing store alive without sharing mutable state —
// the arena itself is not thread-safe and must stay worker-private, like
// everything else in a Terrace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "support/check.hpp"

namespace gentrius::support {

class Arena {
 public:
  static constexpr std::size_t kBlockBytes = 64 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bytes of block capacity currently owned (diagnostics).
  std::size_t reserved_bytes() const noexcept {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.size;
    return total;
  }

  /// Bytes handed out so far (never decreases; deallocate is a no-op).
  std::size_t allocated_bytes() const noexcept { return allocated_; }

  void* allocate(std::size_t bytes, std::size_t align) {
    GENTRIUS_DCHECK(align != 0 && (align & (align - 1)) == 0);
    if (bytes == 0) bytes = 1;
    std::uintptr_t p = (cursor_ + (align - 1)) & ~(std::uintptr_t{align} - 1);
    if (p + bytes > limit_) {
      new_block(bytes + align);
      p = (cursor_ + (align - 1)) & ~(std::uintptr_t{align} - 1);
    }
    cursor_ = p + bytes;
    allocated_ += bytes;
    return reinterpret_cast<void*>(p);
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void new_block(std::size_t min_bytes) {
    const std::size_t size = min_bytes > kBlockBytes ? min_bytes : kBlockBytes;
    Block b{std::make_unique<std::byte[]>(size), size};
    cursor_ = reinterpret_cast<std::uintptr_t>(b.data.get());
    limit_ = cursor_ + size;
    blocks_.push_back(std::move(b));
  }

  std::vector<Block> blocks_;
  std::uintptr_t cursor_ = 0, limit_ = 0;  // cursor_ == limit_: no room
  std::size_t allocated_ = 0;
};

/// std::allocator-compatible handle. Containers holding an ArenaAllocator
/// share ownership of the arena, so a copied container (and its copied
/// allocator) stays valid even if the original owner dies first.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(std::shared_ptr<Arena> arena)
      : arena_(std::move(arena)) {
    GENTRIUS_DCHECK(arena_ != nullptr);
  }

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  // Moves copy: a container move steals the source's allocator, and the
  // moved-from container (e.g. KeyMap::grow's table swap) must still be able
  // to allocate. Copying the shared_ptr keeps both sides armed.
  ArenaAllocator(const ArenaAllocator&) noexcept = default;
  ArenaAllocator& operator=(const ArenaAllocator&) noexcept = default;

  T* allocate(std::size_t n) {
    if (n > static_cast<std::size_t>(-1) / sizeof(T)) throw std::bad_alloc();
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }

  void deallocate(T*, std::size_t) noexcept {}  // monotonic: reclaim at death

  bool operator==(const ArenaAllocator& other) const noexcept {
    return arena_ == other.arena_;
  }

  const std::shared_ptr<Arena>& arena() const noexcept { return arena_; }

 private:
  std::shared_ptr<Arena> arena_;
};

/// Shorthand for an arena-backed std::vector.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace gentrius::support
