// 128-bit content fingerprints for canonical instance encodings.
//
// A Fingerprint identifies a canonicalized problem encoding (a PAM, a
// constraint-tree instance, a decompose component) inside the incremental
// result cache. 128 bits keep the *accidental* collision probability
// negligible at any realistic cache size, but the cache never trusts the
// hash alone: every entry stores the full canonical encoding and a lookup
// compares it byte for byte (the "collision check"), so a collision costs a
// recomputation, never a wrong answer.
//
// The hash is two independently-seeded 64-bit FNV-1a streams over the same
// bytes — deterministic, platform-independent, allocation-free.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace gentrius::support {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }
  friend bool operator<(const Fingerprint& a, const Fingerprint& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};

/// 16-hex-digit-per-word rendering, e.g. for trace lines and debugging.
inline std::string to_string(const Fingerprint& fp) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[15 - i] = kHex[(fp.hi >> (4 * i)) & 0xF];
    out[31 - i] = kHex[(fp.lo >> (4 * i)) & 0xF];
  }
  return out;
}

/// Fingerprint of a byte string (two seeded FNV-1a streams).
inline Fingerprint fingerprint_bytes(std::string_view bytes) noexcept {
  // Standard FNV-1a offset basis / prime for the first stream; the second
  // stream starts from a distinct fixed basis so the two words are
  // independent functions of the input.
  std::uint64_t a = 0xcbf29ce484222325ULL;
  std::uint64_t b = 0x9ae16a3b2f90404fULL;
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  for (const char c : bytes) {
    const auto byte = static_cast<std::uint8_t>(c);
    a = (a ^ byte) * kPrime;
    b = (b ^ (byte + 0x9eU)) * kPrime;
  }
  // Final avalanche (splitmix64 finalizer) so short inputs still spread
  // across the whole word.
  const auto mix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  return Fingerprint{mix(a), mix(b)};
}

/// Order-independent 64-bit mixing helpers for the canonicalization
/// refinement passes (Weisfeiler–Leman-style colour updates).
inline std::uint64_t mix_hash(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const noexcept {
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

}  // namespace gentrius::support
