// Deterministic pseudo-random number generation.
//
// All stochastic components of this project (dataset generation, shuffling,
// property-test instance sampling) draw from the generators defined here so
// that every experiment and test is exactly reproducible from a 64-bit seed.
// std::mt19937 and std::random_device are deliberately avoided: their
// distributions are not guaranteed to be bit-identical across standard
// library implementations.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace gentrius::support {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014); public-domain reference implementation.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Deterministic across platforms; the only generator used at runtime.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6a09e667f3bcc908ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's nearly-divisionless rejection method.
  std::uint64_t below(std::uint64_t bound) noexcept {
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        m = static_cast<__uint128_t>(next()) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Fisher–Yates shuffle (deterministic given the generator state).
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-dataset streams).
  Rng split() noexcept { return Rng(next() ^ 0x9e3779b97f4a7c15ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace gentrius::support
