// Annotated synchronization primitives.
//
// libstdc++'s std::mutex carries no Clang thread-safety attributes, so code
// locking it directly is invisible to -Wthread-safety. These thin wrappers
// add the capability annotations (zero overhead: every method is a single
// forwarded call) and are the only locking primitives the project uses.
//
// Every Mutex additionally carries a compile-time *rank*: a thread may only
// acquire mutexes in strictly increasing rank order. The discipline makes
// deadlock impossible by construction (any cycle in a waits-for graph needs
// one non-increasing edge) and is enforced twice:
//   * statically, by the lock-rank rule of gentrius-analyze
//     (tools/gentrius_lint), which builds the acquisition graph over all
//     MutexLock sites and fails on any non-increasing edge or rank cycle;
//   * dynamically, in debug/sanitizer builds (GENTRIUS_ENABLE_INVARIANTS),
//     by a thread-local stack of held ranks checked on every lock(). An
//     inversion throws InternalError *before* blocking on the mutex, so
//     tests observe the diagnosis instead of the deadlock.
// In release builds the validator compiles to nothing.
//
// CondVar deliberately exposes only the un-predicated wait: callers re-check
// their condition in a loop while holding the Mutex, which keeps the guarded
// reads inside the analyzed caller instead of inside an unannotatable
// lambda passed through std::condition_variable.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <vector>

#include "support/invariant.hpp"
#include "support/thread_annotations.hpp"

namespace gentrius::support {

class CondVar;

/// Lock ranks, outermost-first. Acquire strictly increasing: while holding
/// a mutex of rank r, only mutexes of rank > r may be acquired. Gaps leave
/// room to slot new locks into the hierarchy without renumbering. The full
/// table (owner, what it protects) lives in docs/TOOLING.md.
enum class Rank : int {
  kTaskQueue = 10,        // parallel/task_queue.hpp TaskQueue::mutex_
  kSchedulerSignal = 20,  // parallel/steal_deque.hpp DequeScheduler::mutex_
  kCounterSink = 30,      // reserved: CounterSink is lock-free today
  kTest = 100,            // innermost; test fixtures and harness-only locks
};

namespace detail {
#if GENTRIUS_ENABLE_INVARIANTS
/// Ranks of the mutexes this thread currently holds, in acquisition order.
/// Function-local thread_local so a header-only library gets exactly one
/// instance per thread across translation units.
inline std::vector<int>& held_ranks() {
  thread_local std::vector<int> held;
  return held;
}
#endif
}  // namespace detail

/// std::mutex with capability annotations and a lock rank.
class GENTRIUS_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(Rank rank) : rank_(static_cast<int>(rank)) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GENTRIUS_ACQUIRE() {
    check_rank_before_lock();
    m_.lock();
    note_locked();
  }
  void unlock() GENTRIUS_RELEASE() {
    note_unlocked();
    m_.unlock();
  }
  bool try_lock() GENTRIUS_TRY_ACQUIRE(true) {
    // No rank check: try_lock never blocks, so it cannot deadlock; the
    // held-rank stack still records it so nested lock()s are validated.
    if (!m_.try_lock()) return false;
    note_locked();
    return true;
  }

  Rank rank() const { return static_cast<Rank>(rank_); }

 private:
  void check_rank_before_lock() const {
#if GENTRIUS_ENABLE_INVARIANTS
    for (int held : detail::held_ranks()) {
      GENTRIUS_DCHECK_OP(<, held, rank_);
    }
#endif
  }
  void note_locked() const {
#if GENTRIUS_ENABLE_INVARIANTS
    detail::held_ranks().push_back(rank_);
#endif
  }
  void note_unlocked() const {
#if GENTRIUS_ENABLE_INVARIANTS
    auto& held = detail::held_ranks();
    auto it = std::find(held.rbegin(), held.rend(), rank_);
    GENTRIUS_DCHECK(it != held.rend());
    held.erase(std::next(it).base());
#endif
  }

  friend class CondVar;
  const int rank_;
  std::mutex m_;
};

/// Scoped lock for Mutex (std::scoped_lock is as unannotated as std::mutex).
class GENTRIUS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GENTRIUS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GENTRIUS_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to support::Mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified (or spuriously woken),
  /// and reacquires `mu` before returning. The caller must hold `mu` and
  /// must re-check its predicate in a loop. The rank validator keeps `mu`
  /// on the held stack across the wait: the thread is blocked and acquires
  /// nothing meanwhile, and on return it holds `mu` again.
  void wait(Mutex& mu) GENTRIUS_REQUIRES(mu) {
    // Ownership round-trips through a unique_lock because that is the only
    // handle std::condition_variable accepts; adopt/release keeps the
    // capability held across the call from the analysis' point of view.
    std::unique_lock<std::mutex> handle(mu.m_, std::adopt_lock);
    cv_.wait(handle);
    handle.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A capability with no lock behind it: marks state owned by one logical
/// actor (the virtual-time scheduler thread). Guarding members with a
/// SequentialRole makes Clang prove that every access happens inside a
/// RoleGuard scope — i.e. from the scheduler loop — at zero runtime cost.
class GENTRIUS_CAPABILITY("role") SequentialRole {
 public:
  SequentialRole() = default;
  SequentialRole(const SequentialRole&) = delete;
  SequentialRole& operator=(const SequentialRole&) = delete;

  void acquire() GENTRIUS_ACQUIRE() {}
  void release() GENTRIUS_RELEASE() {}
};

/// Scoped assumption of a SequentialRole.
class GENTRIUS_SCOPED_CAPABILITY RoleGuard {
 public:
  explicit RoleGuard(SequentialRole& role) GENTRIUS_ACQUIRE(role)
      : role_(role) {
    role_.acquire();
  }
  ~RoleGuard() GENTRIUS_RELEASE() { role_.release(); }
  RoleGuard(const RoleGuard&) = delete;
  RoleGuard& operator=(const RoleGuard&) = delete;

 private:
  SequentialRole& role_;
};

}  // namespace gentrius::support
