// Annotated synchronization primitives.
//
// libstdc++'s std::mutex carries no Clang thread-safety attributes, so code
// locking it directly is invisible to -Wthread-safety. These thin wrappers
// add the capability annotations (zero overhead: every method is a single
// forwarded call) and are the only locking primitives the project uses.
//
// CondVar deliberately exposes only the un-predicated wait: callers re-check
// their condition in a loop while holding the Mutex, which keeps the guarded
// reads inside the analyzed caller instead of inside an unannotatable
// lambda passed through std::condition_variable.
#pragma once

#include <condition_variable>
#include <mutex>

#include "support/thread_annotations.hpp"

namespace gentrius::support {

class CondVar;

/// std::mutex with capability annotations.
class GENTRIUS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GENTRIUS_ACQUIRE() { m_.lock(); }
  void unlock() GENTRIUS_RELEASE() { m_.unlock(); }
  bool try_lock() GENTRIUS_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

/// Scoped lock for Mutex (std::scoped_lock is as unannotated as std::mutex).
class GENTRIUS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GENTRIUS_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GENTRIUS_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to support::Mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified (or spuriously woken),
  /// and reacquires `mu` before returning. The caller must hold `mu` and
  /// must re-check its predicate in a loop.
  void wait(Mutex& mu) GENTRIUS_REQUIRES(mu) {
    // Ownership round-trips through a unique_lock because that is the only
    // handle std::condition_variable accepts; adopt/release keeps the
    // capability held across the call from the analysis' point of view.
    std::unique_lock<std::mutex> handle(mu.m_, std::adopt_lock);
    cv_.wait(handle);
    handle.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A capability with no lock behind it: marks state owned by one logical
/// actor (the virtual-time scheduler thread). Guarding members with a
/// SequentialRole makes Clang prove that every access happens inside a
/// RoleGuard scope — i.e. from the scheduler loop — at zero runtime cost.
class GENTRIUS_CAPABILITY("role") SequentialRole {
 public:
  SequentialRole() = default;
  SequentialRole(const SequentialRole&) = delete;
  SequentialRole& operator=(const SequentialRole&) = delete;

  void acquire() GENTRIUS_ACQUIRE() {}
  void release() GENTRIUS_RELEASE() {}
};

/// Scoped assumption of a SequentialRole.
class GENTRIUS_SCOPED_CAPABILITY RoleGuard {
 public:
  explicit RoleGuard(SequentialRole& role) GENTRIUS_ACQUIRE(role)
      : role_(role) {
    role_.acquire();
  }
  ~RoleGuard() GENTRIUS_RELEASE() { role_.release(); }
  RoleGuard(const RoleGuard&) = delete;
  RoleGuard& operator=(const RoleGuard&) = delete;

 private:
  SequentialRole& role_;
};

}  // namespace gentrius::support
