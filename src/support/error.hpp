// Exception types thrown by the public API.
#pragma once

#include <stdexcept>
#include <string>

namespace gentrius::support {

/// Base class for all errors raised by the library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed textual input (Newick strings, PAM files, ...).
class ParseError : public Error {
 public:
  ParseError(std::string message, std::size_t position)
      : Error(message + " (at offset " + std::to_string(position) + ")"),
        position_(position) {}

  /// Byte offset in the input at which parsing failed.
  std::size_t position() const noexcept { return position_; }

 private:
  std::size_t position_;
};

/// Structurally valid but semantically unusable input
/// (duplicate taxa, non-binary trees, empty loci, PAM/tree mismatches, ...).
class InvalidInput : public Error {
 public:
  using Error::Error;
};

/// Internal invariant violation; indicates a bug in the library itself.
class InternalError : public Error {
 public:
  using Error::Error;
};

}  // namespace gentrius::support
